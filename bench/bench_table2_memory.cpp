/// Table II: memory requirement per training-pipeline stage
/// (sample loading / sample processing i.e. activations / parameter
/// updating), with the data-location and bandwidth columns.
///
/// Measured miniature bytes come from the tensor allocator accounting;
/// full-scale columns are PerfModel estimates next to the paper's
/// reported 4 GB / 42 GB / 12 GB.

#include "bench_common.hpp"
#include "core/perfmodel.hpp"
#include "nn/optimizer.hpp"

using namespace coastal;

namespace {
double gb(uint64_t bytes) { return static_cast<double>(bytes) / 1e9; }
double mb(uint64_t bytes) { return static_cast<double>(bytes) / 1e6; }
}  // namespace

int main() {
  bench::print_header("Table II — memory per training stage");
  auto w = bench::make_mini_world("table2", /*train_model=*/false,
                                  /*train_hours=*/10, /*test_hours=*/6);
  auto store = w.train_set.store();

  // Stage 1: sample loading (bytes moved SSD -> CPU -> GPU).
  const uint64_t sample_disk = store.sample_bytes();  // FP16 on disk
  const uint64_t sample_dev =
      static_cast<uint64_t>(w.train_set.spec.total_numel()) * sizeof(float);

  // Stage 2: sample processing — peak activation memory of one
  // forward+backward.
  auto sample = store.read(w.train_set.train_indices[0]);
  w.model->zero_grad();
  tensor::reset_peak_bytes();
  const uint64_t before = tensor::alloc_stats().current_bytes;
  {
    auto out = w.model->forward_sample(sample);
    auto vt = sample.target_volume.reshape({1, 3, w.train_set.spec.H,
                                            w.train_set.spec.W,
                                            w.train_set.spec.D,
                                            w.train_set.spec.T});
    tensor::mse_loss(out.volume, vt).backward();
  }
  const uint64_t activations = tensor::alloc_stats().peak_bytes - before;

  // Stage 3: parameter updating — weights + grads + Adam state.
  nn::Adam opt(w.model->parameters(), 1e-3f);
  uint64_t param_bytes = 0;
  for (const auto& p : w.model->parameters())
    param_bytes += static_cast<uint64_t>(p.numel()) *
                   (sizeof(float) * 2 /*weight+grad*/ + 2 * sizeof(float) /*m,v*/);

  std::printf("%-28s %18s %18s %14s\n", "stage", "miniature (meas.)",
              "full-scale (model)", "paper");
  std::printf("%-28s %14.2f MB  %15.2f GB  %11s\n",
              "sample loading (device)", mb(sample_dev),
              gb(core::PerfModel::sample_device_bytes_fullscale()), "4 GB");
  std::printf("%-28s %14.2f MB  %15.2f GB  %11s\n",
              "sample processing (activ.)", mb(activations),
              gb(core::PerfModel::activation_bytes_fullscale()), "42 GB");
  std::printf("%-28s %14.2f MB  %15.2f GB  %11s\n",
              "parameter updating", mb(param_bytes),
              gb(core::PerfModel::parameter_state_bytes_fullscale()),
              "12 GB*");
  std::printf("\n(*paper's 12 GB includes framework workspace; the model "
              "column is strict optimizer state — see DESIGN.md)\n");
  std::printf("on-disk sample (FP16): %.2f MB miniature; FP16 halves the "
              "750 MB/s SSD stage exactly as in the paper\n",
              mb(sample_disk));

  util::CsvWriter csv(bench::results_dir() + "/table2_memory.csv",
                      {"stage", "mini_bytes", "fullscale_bytes", "paper_gb"});
  csv.row("sample_loading", sample_dev,
          core::PerfModel::sample_device_bytes_fullscale(), 4);
  csv.row("sample_processing", activations,
          core::PerfModel::activation_bytes_fullscale(), 42);
  csv.row("parameter_updating", param_bytes,
          core::PerfModel::parameter_state_bytes_fullscale(), 12);
  return 0;
}
