/// Fig. 8: end-to-end efficiency of the integrated workflow (surrogate +
/// verification + ROMS fallback) across verification thresholds.
///
/// Measured: the miniature workflow's AI / verify / fallback seconds and
/// pass rate per threshold.  Projected: the paper-scale 12-day forecast
/// time and speedup from PerfModel using the measured pass rate — this is
/// the quantity whose *shape* (time falls and speedup rises as the
/// threshold loosens, from ~2x to ~450x) reproduces the figure.

#include <algorithm>

#include "bench_common.hpp"
#include "core/decode.hpp"
#include "core/perfmodel.hpp"
#include "core/verification.hpp"
#include "core/workflow.hpp"

using namespace coastal;

int main() {
  bench::print_header("Fig. 8 — integrated workflow time vs threshold");
  auto w = bench::make_mini_world("fig8", true, 30, 16);

  const int T = w.train_set.spec.T;
  const int episodes = (static_cast<int>(w.test_fields_norm.size()) - 1) / T;

  // Calibrate the sweep to the observed residuals (as in bench_fig7).
  core::MassVerifier probe(w.grid, 1.0);
  std::vector<double> residuals;
  {
    tensor::NoGradGuard ng;
    w.model->set_training(false);
    for (int e = 0; e < episodes; ++e) {
      std::span<const data::CenterFields> win(
          w.test_fields_norm.data() + e * T, static_cast<size_t>(T) + 1);
      auto sample = data::make_sample(w.train_set.spec, win);
      auto out = w.model->forward_sample(sample);
      auto frames = core::decode_prediction(w.train_set.spec, out,
                                            w.train_set.normalizer);
      std::vector<data::CenterFields> seq;
      seq.push_back(w.test_fields[static_cast<size_t>(e * T)]);
      for (auto& f : frames) seq.push_back(std::move(f));
      residuals.push_back(probe.check_sequence(seq, 1800.0).mean_residual);
    }
  }
  std::sort(residuals.begin(), residuals.end());

  util::CsvWriter csv(bench::results_dir() + "/fig8_workflow.csv",
                      {"threshold_ms", "pass_rate", "mini_total_s",
                       "mini_ai_s", "mini_roms_s", "paper_total_s",
                       "paper_speedup"});
  std::printf("%13s %9s | %9s %8s %8s | %12s %9s\n", "threshold", "pass",
              "mini tot", "AI[s]", "ROMS[s]", "paper 12d[s]", "speedup");
  const double paper_roms =
      core::PerfModel::roms_seconds(898, 598, 12, 12 * 86400.0, 512);

  for (int i = 0; i < 6; ++i) {
    const double thr = residuals.front() * 0.9 +
                       (residuals.back() * 1.1 - residuals.front() * 0.9) *
                           static_cast<double>(i) / 5.0;
    core::WorkflowConfig wcfg;
    wcfg.threshold = thr;
    wcfg.snapshot_dt = 1800.0;
    auto r = core::run_workflow(*w.model, w.train_set.spec,
                                w.train_set.normalizer, w.grid, w.tides,
                                w.params, w.test_fields_norm, episodes,
                                w.test_t0, wcfg);
    const double fail = 1.0 - r.pass_rate();
    const double paper_total = core::PerfModel::workflow_12day_seconds(fail);
    std::printf("%13.3e %9.2f | %9.2f %8.2f %8.2f | %12.1f %8.1fx\n", thr,
                r.pass_rate(), r.total_seconds(), r.ai_seconds,
                r.roms_seconds, paper_total, paper_roms / paper_total);
    csv.row(thr, r.pass_rate(), r.total_seconds(), r.ai_seconds,
            r.roms_seconds, paper_total, paper_roms / paper_total);
  }

  std::printf("\npaper anchors: 5542 s (1.8x) at the strictest threshold -> "
              "22.2 s (446x) when everything passes.\n");
  std::printf("shape check: total time falls and speedup rises "
              "monotonically down the rows.\n");
  return 0;
}
