/// Table I: ROMS simulation overhead across published HPC configurations
/// versus the AI surrogate.
///
/// Three layers of evidence are printed:
///   1. the paper's reported numbers (verbatim);
///   2. the calibrated PerfModel's prediction for each configuration
///      (shows the scaling law captures the published spread);
///   3. *measured* miniature numbers: our MPI-style decomposed solver vs
///      our surrogate inference on the same mini mesh, with the measured
///      speedup alongside the projected paper-scale 450x.

#include "bench_common.hpp"
#include "core/perfmodel.hpp"
#include "ocean/parallel_driver.hpp"
#include "util/timer.hpp"

using namespace coastal;
using core::PerfModel;

namespace {

struct Row {
  const char* label;
  int cores;
  int64_t nx, ny, nz;
  double sim_days;
  double reported_seconds;
};

}  // namespace

int main() {
  bench::print_header("Table I — ROMS-on-HPC survey vs AI surrogate");

  const Row rows[] = {
      {"Wang et al. [8] (SGI Altix)", 3700, 1520, 1088, 30, 3, 19915},
      {"Jung et al. [23] small", 36, 422, 412, 40, 3, 1200},
      {"Jung et al. [23] large", 36, 846, 826, 40, 3, 6000},
      {"Nur et al. [24]", 32, 360, 400, 20, 10.0 / 24.0, 1082},
      {"de Paula et al. [25]", 128, 212, 222, 32, 365, 144000},
      {"Traditional MPI ROMS (paper)", 512, 898, 598, 12, 12, 9908},
  };

  util::CsvWriter csv(bench::results_dir() + "/table1_overhead.csv",
                      {"config", "cores", "mesh", "sim_days",
                       "reported_s", "perfmodel_s"});
  std::printf("%-32s %6s %16s %8s %12s %12s\n", "configuration", "cores",
              "mesh", "days", "reported[s]", "model[s]");
  for (const auto& r : rows) {
    const double model = PerfModel::roms_seconds(r.nx, r.ny, r.nz,
                                                 r.sim_days * 86400.0, r.cores);
    char mesh[32];
    std::snprintf(mesh, sizeof(mesh), "%ldx%ldx%ld", r.nx, r.ny, r.nz);
    std::printf("%-32s %6d %16s %8.2f %12.0f %12.0f\n", r.label, r.cores,
                mesh, r.sim_days, r.reported_seconds, model);
    csv.row(r.label, r.cores, mesh, r.sim_days, r.reported_seconds, model);
  }
  const double surrogate = PerfModel::forecast_12day_seconds();
  std::printf("%-32s %6s %16s %8.2f %12.1f %12.1f\n",
              "AI surrogate (paper, A100)", "1 GPU", "898x598x12", 12.0, 22.0,
              surrogate);
  csv.row("AI surrogate (A100)", 1, "898x598x12", 12.0, 22.0, surrogate);
  std::printf("\npaper-scale projected speedup (512-core ROMS / surrogate): "
              "%.0fx (paper: ~450x)\n",
              PerfModel::roms_seconds(898, 598, 12, 12 * 86400.0, 512) /
                  surrogate);

  // ---- measured miniature comparison ------------------------------------
  std::printf("\n--- measured on this host (miniature mesh) ---\n");
  auto w = bench::make_mini_world("table1", /*train_model=*/true,
                                  /*train_hours=*/24, /*test_hours=*/8);
  const double horizon_s = 6 * 3600.0;  // "12-day equivalent" mini horizon
  const int nsteps = static_cast<int>(horizon_s / w.params.dt);

  util::CsvWriter mcsv(bench::results_dir() + "/table1_measured.csv",
                       {"system", "ranks", "seconds"});
  std::printf("%-36s %8s %12s\n", "system (20x20x6 mesh, 6 h horizon)",
              "ranks", "seconds");
  double roms_1rank = 0.0;
  for (int ranks : {1, 2, 4}) {
    util::Timer t;
    auto r = ocean::run_decomposed(w.grid, w.tides, w.params, ranks, nsteps);
    const double secs = t.seconds();
    if (ranks == 1) roms_1rank = secs;
    std::printf("%-36s %8d %12.3f\n", "numerical solver (MPI-style)", ranks,
                secs);
    mcsv.row("solver", ranks, secs);
  }

  // Surrogate: 4 episodes of T=3 half-hour steps cover the same horizon.
  const int episodes = static_cast<int>(horizon_s / 1800.0) / w.train_set.spec.T;
  util::Timer st;
  {
    tensor::NoGradGuard ng;
    w.model->set_training(false);
    for (int e = 0; e < episodes; ++e) {
      std::span<const data::CenterFields> win(
          w.test_fields_norm.data() + e * w.train_set.spec.T,
          static_cast<size_t>(w.train_set.spec.T) + 1);
      auto s = data::make_sample(w.train_set.spec, win);
      w.model->forward_sample(s);
    }
  }
  const double ai_secs = st.seconds();
  std::printf("%-36s %8d %12.3f\n", "AI surrogate (inference)", 1, ai_secs);
  mcsv.row("surrogate", 1, ai_secs);
  std::printf("\nmeasured miniature speedup (1-rank solver / surrogate): "
              "%.1fx\n",
              roms_1rank / ai_secs);
  std::printf("NOTE: the miniature solver is cheap (tiny mesh); the paper's "
              "450x emerges at full mesh scale, where solver cost grows with "
              "cells*steps while surrogate cost grows with tokens.\n");
  return 0;
}
