/// Fig. 7: verification pass rate of surrogate forecasts as a function of
/// the water-mass-residual threshold.
///
/// The paper sweeps 3.0e-4 .. 5.5e-4 m/s at full mesh scale; residual
/// magnitudes depend on mesh resolution, so this bench sweeps a threshold
/// range calibrated to the miniature residual distribution *and* prints
/// where the paper's thresholds would sit.  The reproduced shape is the
/// monotone rise of pass rate with threshold, reaching ~1 at the loose
/// end.

#include <algorithm>

#include "bench_common.hpp"
#include "core/decode.hpp"
#include "core/verification.hpp"

using namespace coastal;

int main() {
  bench::print_header("Fig. 7 — verification pass rate vs threshold");
  auto w = bench::make_mini_world("fig7", true, 30, 16);

  // Collect the mean residual of every non-overlapping test episode.
  const int T = w.train_set.spec.T;
  const int episodes = (static_cast<int>(w.test_fields_norm.size()) - 1) / T;
  core::MassVerifier probe(w.grid, 1.0);
  std::vector<double> residuals;
  {
    tensor::NoGradGuard ng;
    w.model->set_training(false);
    for (int e = 0; e < episodes; ++e) {
      std::span<const data::CenterFields> win(
          w.test_fields_norm.data() + e * T, static_cast<size_t>(T) + 1);
      auto sample = data::make_sample(w.train_set.spec, win);
      auto out = w.model->forward_sample(sample);
      auto frames = core::decode_prediction(w.train_set.spec, out,
                                            w.train_set.normalizer);
      std::vector<data::CenterFields> seq;
      seq.push_back(w.test_fields[static_cast<size_t>(e * T)]);
      for (auto& f : frames) seq.push_back(std::move(f));
      residuals.push_back(probe.check_sequence(seq, 1800.0).mean_residual);
    }
  }
  std::sort(residuals.begin(), residuals.end());
  const double lo = residuals.front(), hi = residuals.back();
  std::printf("episode mean residuals: min %.3e  median %.3e  max %.3e m/s "
              "(%d episodes)\n\n",
              lo, residuals[residuals.size() / 2], hi, episodes);

  // Sweep six thresholds spanning the observed distribution (same role as
  // the paper's 3.0e-4..5.5e-4 sweep at full scale).
  util::CsvWriter csv(bench::results_dir() + "/fig7_passrate.csv",
                      {"threshold_ms", "pass_rate"});
  std::printf("%14s %12s\n", "threshold[m/s]", "pass rate");
  for (int i = 0; i < 6; ++i) {
    const double thr =
        lo * 0.9 + (hi * 1.1 - lo * 0.9) * static_cast<double>(i) / 5.0;
    const double rate =
        static_cast<double>(std::count_if(residuals.begin(), residuals.end(),
                                          [&](double r) { return r < thr; })) /
        static_cast<double>(residuals.size());
    std::printf("%14.3e %12.3f\n", thr, rate);
    csv.row(thr, rate);
  }

  std::printf("\npaper shape: pass rate rises monotonically with the "
              "threshold; >99%% of results pass at 5.0e-4 m/s (their mesh "
              "scale).\n");
  return 0;
}
