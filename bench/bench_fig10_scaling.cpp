/// Fig. 10: weak scaling of data-parallel training with and without
/// activation checkpointing, 1..32 GPUs.
///
/// Measured: the real data-parallel trainer (model replicas + gradient
/// allreduce over MPI-style ranks) at 1..4 ranks — on this single-core
/// host the measured curve shows the *overhead* structure, not speedup.
/// Projected: PerfModel's calibrated ring-allreduce throughput for the
/// paper's 1..32 A100s, which carries the figure's shape (near-linear
/// within a node, efficiency dip across nodes, checkpointing uniformly
/// above no-checkpointing).

#include "bench_common.hpp"
#include "core/perfmodel.hpp"
#include "core/trainer.hpp"

using namespace coastal;

int main() {
  bench::print_header("Fig. 10 — weak scaling of surrogate training");
  auto w = bench::make_mini_world("fig10", /*train_model=*/false,
                                  /*train_hours=*/12, /*test_hours=*/6);

  // ---- measured: real replicas + allreduce on this host -----------------
  std::printf("--- measured (thread-backed ranks, single-core host) ---\n");
  std::printf("%6s %18s %18s\n", "ranks", "samples/s", "allreduce MB/rank");
  util::CsvWriter mcsv(bench::results_dir() + "/fig10_measured.csv",
                       {"ranks", "throughput", "allreduce_bytes"});
  for (int ranks : {1, 2, 4}) {
    core::TrainConfig tcfg;
    tcfg.lr = 1e-3f;
    auto stats = core::train_data_parallel(w.model->config(), w.train_set,
                                           tcfg, ranks, 2);
    std::printf("%6d %18.3f %18.2f\n", ranks, stats.throughput,
                static_cast<double>(stats.allreduce_bytes) / 1e6);
    mcsv.row(ranks, stats.throughput, stats.allreduce_bytes);
  }

  // ---- projected: paper scale -------------------------------------------
  std::printf("\n--- projected (PerfModel, A100s; paper Fig. 10) ---\n");
  std::printf("%6s %22s %22s\n", "GPUs", "with ckpt [inst/s]",
              "w/o ckpt [inst/s]");
  util::CsvWriter pcsv(bench::results_dir() + "/fig10_projected.csv",
                       {"gpus", "with_ckpt", "without_ckpt"});
  for (int n : {1, 2, 4, 8, 16, 32}) {
    const double with_c = core::PerfModel::training_throughput(n, true);
    const double without_c = core::PerfModel::training_throughput(n, false);
    std::printf("%6d %22.2f %22.2f\n", n, with_c, without_c);
    pcsv.row(n, with_c, without_c);
  }

  std::printf("\nshape check (paper): both curves rise sub-linearly, the "
              "checkpointing curve sits uniformly higher (batch 2 vs 1), "
              "and 32 GPUs land near ~25 inst/s.\n");
  return 0;
}
