#pragma once

/// \file bench_common.hpp
/// Shared miniature-world construction for the benchmark harnesses.
///
/// Every bench reproduces one table or figure of the paper at miniature
/// scale (the substitutions are documented in DESIGN.md) and, where the
/// paper's absolute numbers depend on the DGX testbed, prints the
/// PerfModel projection alongside the measured miniature value.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/surrogate.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "ocean/archive.hpp"
#include "ocean/bathymetry.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"

namespace coastal::bench {

struct MiniWorld {
  ocean::Grid grid{20, 20, 6, 400.0, 400.0};
  ocean::TidalForcing tides = ocean::TidalForcing::gulf_coast_default();
  ocean::PhysicsParams params;

  /// Training archive ("year A") and a disjoint, later test archive
  /// ("year B"), mirroring the paper's 2011-train / 2012-test split.
  std::vector<data::CenterFields> train_fields;
  std::vector<data::CenterFields> test_fields;
  std::vector<data::CenterFields> test_fields_norm;
  double test_t0 = 0.0;

  data::Dataset train_set;
  data::Dataset test_set;

  std::unique_ptr<core::SurrogateModel> model;  ///< trained fine model
};

inline std::string bench_dir(const std::string& name) {
  auto p = std::filesystem::temp_directory_path() / ("coastal_bench_" + name);
  std::filesystem::remove_all(p);
  std::filesystem::create_directories(p);
  return p.string();
}

/// Output directory for the CSV artifacts (checked into the working tree
/// so plots can be regenerated).
inline std::string results_dir() {
  std::filesystem::create_directories("bench_results");
  return "bench_results";
}

/// Build grid + archives + datasets; optionally train the fine model.
inline MiniWorld make_mini_world(const std::string& name,
                                 bool train_model = true,
                                 int train_hours = 30, int test_hours = 14,
                                 int T = 3, int train_epochs = 8) {
  util::set_log_level(util::LogLevel::kWarn);
  MiniWorld w;
  w.params.dt = 10.0;
  ocean::generate_estuary(w.grid, ocean::EstuaryParams{}, 42);

  ocean::ArchiveConfig train_cfg;
  train_cfg.spinup_seconds = 2 * 3600.0;
  train_cfg.duration_seconds = train_hours * 3600.0;
  train_cfg.interval_seconds = 1800.0;
  auto train_snaps =
      ocean::simulate_archive(w.grid, w.tides, w.params, train_cfg);
  w.train_fields = data::center_archive(w.grid, train_snaps);

  // Test "year": continue the same ocean further in time by extending the
  // spinup past the training span.
  ocean::ArchiveConfig test_cfg;
  test_cfg.spinup_seconds = train_cfg.spinup_seconds +
                            train_cfg.duration_seconds + 3600.0;
  test_cfg.duration_seconds = test_hours * 3600.0;
  test_cfg.interval_seconds = 1800.0;
  auto test_snaps = ocean::simulate_archive(w.grid, w.tides, w.params, test_cfg);
  w.test_t0 = test_snaps.front().time;
  w.test_fields = data::center_archive(w.grid, test_snaps);

  data::DatasetConfig dcfg;
  dcfg.T = T;
  dcfg.stride = 1;
  dcfg.multiple_hw = 4;
  dcfg.multiple_d = 2;
  dcfg.dir = bench_dir(name + "_train");
  w.train_set = data::build_dataset(w.train_fields, dcfg);

  dcfg.dir = bench_dir(name + "_test");
  dcfg.stride = T;  // non-overlapping test windows, as the paper uses
  w.test_set = data::build_dataset(w.test_fields, dcfg,
                                   &w.train_set.normalizer, 0.0);
  // All test windows are "train_indices" of the test set (val_fraction 0).
  w.test_fields_norm = w.test_fields;
  for (auto& f : w.test_fields_norm)
    w.train_set.normalizer.normalize_fields(f);

  core::SurrogateConfig mcfg;
  mcfg.H = w.train_set.spec.H;
  mcfg.W = w.train_set.spec.W;
  mcfg.D = w.train_set.spec.D;
  mcfg.T = w.train_set.spec.T;
  mcfg.patch_h = 5;
  mcfg.patch_w = 5;
  mcfg.patch_d = 2;
  mcfg.embed_dim = 8;
  mcfg.stages = 3;
  mcfg.heads = {2, 4, 8};
  util::Rng rng(7);
  w.model = std::make_unique<core::SurrogateModel>(mcfg, rng);

  if (train_model) {
    core::TrainConfig tcfg;
    tcfg.epochs = train_epochs;
    tcfg.lr = 2e-3f;
    tcfg.loader.num_workers = 1;
    core::train(*w.model, w.train_set, tcfg);
  }
  return w;
}

/// Machine-readable benchmark records: one JSON object per measured
/// (op, size) pair.  Seeds the perf trajectory — each PR can diff its
/// BENCH_*.json against the previous one.
class BenchJsonWriter {
 public:
  void add(const std::string& op, int64_t size, double ns_per_iter,
           double items_per_second) {
    records_.push_back({op, size, ns_per_iter, items_per_second});
  }

  bool empty() const { return records_.empty(); }

  /// Writes a JSON array of {op, size, ns_per_iter, items_per_second}.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(f,
                   "  {\"op\": \"%s\", \"size\": %lld, \"ns_per_iter\": %.1f, "
                   "\"items_per_second\": %.3e}%s\n",
                   r.op.c_str(), static_cast<long long>(r.size),
                   r.ns_per_iter, r.items_per_second,
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    return true;
  }

 private:
  struct Record {
    std::string op;
    int64_t size;
    double ns_per_iter;
    double items_per_second;
  };
  std::vector<Record> records_;
};

inline void print_header(const char* what) {
  std::printf("\n=== %s ===\n", what);
  std::printf(
      "(miniature reproduction; paper-scale columns are PerfModel "
      "projections — see DESIGN.md)\n\n");
}

}  // namespace coastal::bench
