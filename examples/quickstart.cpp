/// Quickstart: the whole pipeline in ~80 lines.
///
///   1. build a synthetic estuary and simulate tides with the numerical
///      model (the ROMS stand-in);
///   2. turn the archive into a training dataset;
///   3. train a miniature 4-D Swin surrogate;
///   4. forecast one episode and compare against the numerical truth.
///
/// Runs in well under a minute on one CPU core.

#include <cstdio>

#include "core/surrogate.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "ocean/archive.hpp"
#include "util/logging.hpp"
#include "ocean/bathymetry.hpp"

using namespace coastal;

int main() {
  util::set_log_level(util::LogLevel::kWarn);

  // --- 1. ocean simulation ------------------------------------------------
  ocean::Grid grid(20, 20, 6, 400.0, 400.0);
  ocean::generate_estuary(grid, ocean::EstuaryParams{}, /*seed=*/42);
  auto tides = ocean::TidalForcing::gulf_coast_default();
  ocean::PhysicsParams params;
  params.dt = 10.0;

  ocean::ArchiveConfig acfg;
  acfg.spinup_seconds = 2 * 3600.0;
  acfg.duration_seconds = 24 * 3600.0;  // one simulated day
  acfg.interval_seconds = 1800.0;       // half-hourly snapshots
  std::printf("simulating %.0f h of tides on a %dx%dx%d estuary...\n",
              acfg.duration_seconds / 3600.0, grid.nx(), grid.ny(),
              grid.nz());
  auto snapshots = ocean::simulate_archive(grid, tides, params, acfg);
  std::printf("  %zu snapshots, %zu wet cells\n", snapshots.size(),
              grid.wet_count());

  // --- 2. dataset ----------------------------------------------------------
  auto fields = data::center_archive(grid, snapshots);
  data::DatasetConfig dcfg;
  dcfg.T = 3;       // forecast 3 snapshots per model call
  dcfg.stride = 1;
  dcfg.dir = "/tmp/coastal_quickstart";
  auto dataset = data::build_dataset(fields, dcfg);
  std::printf("dataset: %zu train / %zu val samples\n",
              dataset.train_indices.size(), dataset.val_indices.size());

  // --- 3. surrogate training ----------------------------------------------
  core::SurrogateConfig mcfg;
  mcfg.H = dataset.spec.H;
  mcfg.W = dataset.spec.W;
  mcfg.D = dataset.spec.D;
  mcfg.T = dataset.spec.T;
  mcfg.patch_h = 5;
  mcfg.patch_w = 5;
  mcfg.patch_d = 2;
  mcfg.embed_dim = 8;
  mcfg.stages = 3;
  mcfg.heads = {2, 4, 8};
  util::Rng rng(7);
  core::SurrogateModel model(mcfg, rng);
  std::printf("model: %.3fM parameters\n",
              static_cast<double>(model.num_parameters()) / 1e6);

  core::TrainConfig tcfg;
  tcfg.epochs = 4;
  tcfg.lr = 2e-3f;
  auto stats = core::train(model, dataset, tcfg);
  std::printf("trained %zu samples in %.1f s (%.2f samples/s); val loss "
              "%.4f\n",
              stats.samples_seen, stats.wall_seconds, stats.throughput,
              stats.val_loss);

  // --- 4. forecast ----------------------------------------------------------
  auto metrics = core::evaluate(model, dataset, dataset.val_indices);
  std::printf("\nheld-out forecast error (denormalized):\n");
  const char* units[] = {"m/s", "m/s", "m/s", "m"};
  for (int v = 0; v < data::kNumVariables; ++v)
    std::printf("  %-4s MAE %.3e %s   RMSE %.3e %s\n",
                data::variable_name(v), metrics.mae[v], units[v],
                metrics.rmse[v], units[v]);
  std::printf("\ndone — see examples/tidal_simulation.cpp and "
              "examples/forecast_workflow.cpp for the deeper dives.\n");
  return 0;
}
