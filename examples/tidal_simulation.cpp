/// Example: the numerical ocean model on its own — the ROMS-substrate
/// features.  Builds a procedural estuary, runs the tidal solver both
/// serially and domain-decomposed over MPI-style ranks, verifies they
/// agree bit-for-bit, prints tidal statistics, and renders the free
/// surface as ASCII maps through half a tidal cycle.

#include <cstdio>

#include "io/field_io.hpp"
#include "util/logging.hpp"
#include "ocean/bathymetry.hpp"
#include "ocean/parallel_driver.hpp"
#include "ocean/sigma.hpp"
#include "ocean/solver.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

using namespace coastal;

int main() {
  util::set_log_level(util::LogLevel::kWarn);
  ocean::Grid grid(40, 28, 8, 450.0, 450.0);
  ocean::EstuaryParams ep;
  ep.num_inlets = 2;
  ep.num_rivers = 2;
  ocean::generate_estuary(grid, ep, 2024);
  std::printf("estuary: %dx%d cells, %zu wet (%.0f%%), depths up to %.1f m\n",
              grid.nx(), grid.ny(), grid.wet_count(),
              100.0 * grid.wet_count() / grid.cells(),
              *std::max_element(grid.h_field().begin(),
                                grid.h_field().end()));

  auto tides = ocean::TidalForcing::gulf_coast_default();
  ocean::PhysicsParams params;
  params.dt = 15.0;

  // --- serial run with ASCII snapshots ------------------------------------
  ocean::TidalModel model(grid, tides, params);
  std::printf("\nspinning up 12 h...\n");
  model.run_seconds(12 * 3600.0);
  for (int frame = 0; frame < 3; ++frame) {
    std::printf("\nfree surface at t = %.1f h (boundary tide %+.2f m):\n",
                model.time() / 3600.0, tides.elevation(model.time()));
    std::printf("%s", io::ascii_field(model.zeta(), grid.nx(), grid.ny(),
                                      -0.35f, 0.35f, &grid)
                          .c_str());
    model.run_seconds(3.1 * 3600.0);  // ~quarter M2 cycle
  }

  // --- tidal statistics at a harbor station --------------------------------
  const int hx = grid.nx() * 2 / 3, hy = grid.ny() / 2;
  util::RunningStats station;
  for (int i = 0; i < 50; ++i) {
    model.run_seconds(1800.0);
    station.add(model.zeta()[grid.rho_index(hx, hy)]);
  }
  std::printf("\nharbor station (%d,%d) over 25 h: range %.2f m, mean "
              "%+.3f m\n",
              hx, hy, station.max() - station.min(), station.mean());

  // --- 3-D reconstruction ---------------------------------------------------
  auto snap = ocean::reconstruct_3d(grid, model.time(), model.zeta(),
                                    model.ubar(), model.vbar());
  float wmax = 0, umax = 0;
  for (const auto& layer : snap.w3d)
    for (float x : layer) wmax = std::max(wmax, std::abs(x));
  for (const auto& layer : snap.u3d)
    for (float x : layer) umax = std::max(umax, std::abs(x));
  std::printf("3-D fields: max |u| = %.3f m/s across %d sigma layers, "
              "max |w| = %.2e m/s (w << u, as the paper notes)\n",
              umax, grid.nz(), wmax);

  // --- decomposed runs (MPI ROMS's parallel structure) --------------------
  std::printf("\ndomain decomposition (%d steps):\n", 600);
  std::printf("%6s %12s %14s %12s\n", "ranks", "seconds", "halo msgs",
              "halo MB");
  for (int ranks : {1, 2, 4}) {
    auto r = ocean::run_decomposed(grid, tides, params, ranks, 600);
    std::printf("%6d %12.3f %14lu %12.3f\n", ranks, r.wall_seconds,
                static_cast<unsigned long>(r.halo_messages),
                static_cast<double>(r.halo_bytes) / 1e6);
  }
  std::printf("(results are bit-identical across rank counts — tested in "
              "tests/test_ocean_solver.cpp)\n");
  return 0;
}
