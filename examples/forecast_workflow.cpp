/// Example: the paper's integrated forecasting workflow (Fig. 1) —
/// surrogate prediction, water-mass-conservation verification, and
/// automatic fallback to the numerical model when a forecast episode
/// fails the physics check.

#include <cstdio>
#include <filesystem>

#include "core/trainer.hpp"
#include "core/workflow.hpp"
#include "data/dataset.hpp"
#include "ocean/archive.hpp"
#include "util/logging.hpp"
#include "ocean/bathymetry.hpp"

using namespace coastal;

int main() {
  util::set_log_level(util::LogLevel::kWarn);

  // --- world + data ---------------------------------------------------------
  ocean::Grid grid(20, 20, 6, 400.0, 400.0);
  ocean::generate_estuary(grid, ocean::EstuaryParams{}, 42);
  auto tides = ocean::TidalForcing::gulf_coast_default();
  ocean::PhysicsParams params;
  params.dt = 10.0;

  ocean::ArchiveConfig acfg;
  acfg.spinup_seconds = 2 * 3600.0;
  acfg.duration_seconds = 30 * 3600.0;
  acfg.interval_seconds = 1800.0;
  auto snaps = ocean::simulate_archive(grid, tides, params, acfg);
  auto fields = data::center_archive(grid, snaps);

  data::DatasetConfig dcfg;
  dcfg.T = 3;
  dcfg.stride = 1;
  dcfg.dir = "/tmp/coastal_workflow_example";
  auto dataset = data::build_dataset(fields, dcfg);

  core::SurrogateConfig mcfg;
  mcfg.H = dataset.spec.H;
  mcfg.W = dataset.spec.W;
  mcfg.D = dataset.spec.D;
  mcfg.T = dataset.spec.T;
  mcfg.patch_h = 5;
  mcfg.patch_w = 5;
  mcfg.patch_d = 2;
  mcfg.embed_dim = 8;
  mcfg.stages = 3;
  mcfg.heads = {2, 4, 8};
  util::Rng rng(7);
  core::SurrogateModel model(mcfg, rng);
  core::TrainConfig tcfg;
  tcfg.epochs = 6;
  tcfg.lr = 2e-3f;
  std::printf("training the surrogate (%d epochs)...\n", tcfg.epochs);
  core::train(model, dataset, tcfg);

  // --- run the workflow at three thresholds ---------------------------------
  std::vector<data::CenterFields> norm_fields = fields;
  for (auto& f : norm_fields) dataset.normalizer.normalize_fields(f);
  const double t0 = snaps.front().time;
  const int episodes = 5;

  std::printf("\n%-14s %10s %10s %10s %10s %10s\n", "threshold[m/s]",
              "accepted", "fallback", "AI[s]", "ROMS[s]", "total[s]");
  for (double thr : {3e-5, 8e-5, 1e-3}) {
    core::WorkflowConfig wcfg;
    wcfg.threshold = thr;
    wcfg.snapshot_dt = acfg.interval_seconds;
    auto r = core::run_workflow(model, dataset.spec, dataset.normalizer,
                                grid, tides, params, norm_fields, episodes,
                                t0, wcfg);
    std::printf("%-14.1e %10zu %10zu %10.2f %10.2f %10.2f\n", thr,
                r.accepted, r.fallbacks, r.ai_seconds, r.roms_seconds,
                r.total_seconds());
  }
  std::printf("\nloose thresholds accept every AI episode (fast); strict "
              "ones route episodes back through the numerical model "
              "(reliable) — exactly the trade-off of Fig. 8.\n");
  return 0;
}
