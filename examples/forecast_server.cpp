/// Example: the forecast *service* — concurrent clients submitting
/// episode requests to a ForecastServer that micro-batches compatible
/// episodes through one surrogate, collapses identical in-flight
/// requests, verifies every result against water-mass conservation, and
/// falls back to the numerical model when the physics check fails.
///
/// Replays a synthetic request trace shaped like public-forecast traffic:
/// several client threads, each repeatedly requesting the current
/// forecast window with jittered arrival times, with heavy duplication
/// across clients.  Prints the ServerStats dashboard and a serial
/// baseline comparison.
///
/// Chaos mode: pass `--faults <schedule>` (or set COASTAL_FAULTS) to
/// inject deterministic faults into the serving path, e.g.
///
///   forecast_server --faults 'rollout.step:nan@1x4;serve.worker:hang@1x1'
///
/// which arms the retry/watchdog/breaker machinery and extends the
/// dashboard with the registry's reliability and fault-site metrics.
///
/// Observability: `--metrics <path>` writes the full Prometheus text
/// exposition (server + cache + reliability + fault sites + stage
/// profile) on exit; `--trace <path>` enables per-request tracing and
/// writes the JSON span trees (render with tools/trace_view.py).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <thread>

#include "core/rollout.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "obs/trace.hpp"
#include "ocean/archive.hpp"
#include "ocean/bathymetry.hpp"
#include "serve/server.hpp"
#include "tensor/storage.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

using namespace coastal;

int main(int argc, char** argv) {
  util::set_log_level(util::LogLevel::kWarn);

  std::string fault_schedule;
  std::string metrics_path;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      fault_schedule = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--faults <schedule>] [--metrics <path>] "
                   "[--trace <path>]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!fault_schedule.empty()) {
    util::FaultInjector::instance().install(fault_schedule);
    std::printf("fault schedule armed: %s\n", fault_schedule.c_str());
  }

  // --- world + data --------------------------------------------------------
  ocean::Grid grid(20, 20, 6, 400.0, 400.0);
  ocean::generate_estuary(grid, ocean::EstuaryParams{}, 42);
  auto tides = ocean::TidalForcing::gulf_coast_default();
  ocean::PhysicsParams params;
  params.dt = 10.0;

  ocean::ArchiveConfig acfg;
  acfg.spinup_seconds = 2 * 3600.0;
  acfg.duration_seconds = 30 * 3600.0;
  acfg.interval_seconds = 1800.0;
  auto snaps = ocean::simulate_archive(grid, tides, params, acfg);
  auto fields = data::center_archive(grid, snaps);

  data::DatasetConfig dcfg;
  dcfg.T = 3;
  dcfg.stride = 1;
  dcfg.dir = "/tmp/coastal_server_example";
  auto dataset = data::build_dataset(fields, dcfg);

  core::SurrogateConfig mcfg;
  mcfg.H = dataset.spec.H;
  mcfg.W = dataset.spec.W;
  mcfg.D = dataset.spec.D;
  mcfg.T = dataset.spec.T;
  mcfg.patch_h = 5;
  mcfg.patch_w = 5;
  mcfg.patch_d = 2;
  mcfg.embed_dim = 8;
  mcfg.stages = 3;
  mcfg.heads = {2, 4, 8};
  util::Rng rng(7);
  core::SurrogateModel model(mcfg, rng);
  core::TrainConfig tcfg;
  tcfg.epochs = 4;
  tcfg.lr = 2e-3f;
  std::printf("training the surrogate (%d epochs)...\n", tcfg.epochs);
  core::train(model, dataset, tcfg);

  std::vector<data::CenterFields> norm_fields = fields;
  for (auto& f : norm_fields) dataset.normalizer.normalize_fields(f);

  // --- the request trace ---------------------------------------------------
  // 4 clients x 8 requests, every request drawn from 4 "current" episode
  // windows (heavy duplication, as when many users ask for the live
  // forecast), arrivals jittered by a few ms.
  constexpr int kClients = 4, kPerClient = 8, kWindows = 4;
  auto window_of = [&](int widx) {
    std::vector<data::CenterFields> w(
        norm_fields.begin() + widx,
        norm_fields.begin() + widx + dataset.spec.T + 1);
    return w;
  };

  // --- serial baseline: the identical 32 episodes, one at a time, with
  // the same verification + fallback the server applies -------------------
  util::Timer serial_timer;
  {
    tensor::NoGradGuard ng;
    model.set_training(false);
    core::MassVerifier verifier(grid, 8e-5);
    for (int i = 0; i < kClients * kPerClient; ++i) {
      tensor::ArenaScope arena;
      auto win = window_of((i / kClients) % kWindows);
      auto frames = core::forecast_episode(model, dataset.spec,
                                           dataset.normalizer, win, nullptr);
      const auto current =
          data::denormalized_copy(win.front(), dataset.normalizer);
      core::verify_or_fallback(frames, current, verifier, grid, tides,
                               params, current.time, acfg.interval_seconds);
    }
  }
  const double serial_s = serial_timer.seconds();

  // --- the server ----------------------------------------------------------
  serve::ServerConfig scfg;
  scfg.workers = 1;
  scfg.queue_capacity = 32;
  scfg.batch.max_batch = 8;
  scfg.batch.max_wait_us = 4000;
  scfg.threshold = 8e-5;
  scfg.snapshot_dt = acfg.interval_seconds;
  scfg.fallback = serve::FallbackContext{tides, params};
  if (!trace_path.empty()) {
    // Trace every request: the run is small, so sampling would just
    // leave holes in the dumped span trees.
    scfg.obs.trace.enabled = true;
    scfg.obs.trace.sample_rate = 1.0;
  }
  if (!fault_schedule.empty()) {
    // Chaos runs arm the full reliability stack: a second worker so a
    // hang doesn't serialize everything, retries for transient throws,
    // and the watchdog to retire parked workers.
    scfg.workers = 2;
    scfg.reliability.retry.max_attempts = 4;
    scfg.reliability.retry.backoff_us = 500;
    scfg.reliability.watchdog.hang_timeout_ms = 2000;
    scfg.reliability.watchdog.poll_ms = 50;
  }
  serve::ForecastServer server({{&model, dataset.spec}}, dataset.normalizer,
                               &grid, scfg);

  // Open-loop clients: every client asks for the *current* forecast
  // window (it advances each round), submissions jittered by a few
  // hundred µs — the duplication-heavy shape of public traffic.
  util::Timer served_timer;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937 jitter(static_cast<unsigned>(c));
      std::uniform_int_distribution<int> wait_us(0, 500);
      std::vector<std::future<serve::ForecastResult>> mine;
      for (int i = 0; i < kPerClient; ++i) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(wait_us(jitter)));
        serve::ForecastRequest req;
        req.window = window_of(i % kWindows);
        auto f = server.submit(std::move(req));
        if (f) mine.push_back(std::move(*f));
      }
      for (auto& f : mine) {
        try {
          f.get();
        } catch (const serve::ForecastError& e) {
          // Typed serving failures (worker lost, deadline, ...) are an
          // expected outcome of a chaos run; the dashboard counts them.
          std::fprintf(stderr, "client %d: request failed: %s\n", c,
                       e.what());
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  const double served_s = served_timer.seconds();
  const auto stats = server.stats();
  // Capture the exposition while the server is live so queue-depth and
  // breaker gauges reflect the run, not the drained post-shutdown state.
  const std::string exposition = server.metrics_text();
  server.shutdown();

  // --- dashboard -----------------------------------------------------------
  std::printf("\n== forecast_server: %d clients x %d requests ==\n", kClients,
              kPerClient);
  std::printf("%-28s %10llu\n", "served",
              static_cast<unsigned long long>(stats.served));
  std::printf("%-28s %10llu\n", "coalesced (shared entries)",
              static_cast<unsigned long long>(stats.coalesced));
  std::printf("%-28s %10llu\n", "batches",
              static_cast<unsigned long long>(stats.batches));
  std::printf("%-28s %10.2f\n", "mean requests/forward", stats.mean_batch);
  std::printf("%-28s %10.1f\n", "p50 latency [ms]", stats.p50_ms);
  std::printf("%-28s %10.1f\n", "p95 latency [ms]", stats.p95_ms);
  std::printf("%-28s %10.1f\n", "p99 latency [ms]", stats.p99_ms);
  std::printf("%-28s %10.1f\n", "throughput [req/s]", stats.throughput_rps);
  std::printf("%-28s %10.3f\n", "fallback rate", stats.fallback_rate());
  std::printf("distinct-episodes-per-forward histogram:");
  for (int i = 0; i < serve::ServerStatsSnapshot::kBatchHistBuckets; ++i) {
    if (stats.batch_hist[static_cast<size_t>(i)]) {
      std::printf("  %dx:%llu", i + 1,
                  static_cast<unsigned long long>(
                      stats.batch_hist[static_cast<size_t>(i)]));
    }
  }
  std::printf("\n");
  if (!fault_schedule.empty()) {
    // The reliability story — failed/retries/degraded/worker-lost
    // counters, breaker state, and per-site fault stats — now lives in
    // the metrics registry; print the exposition instead of a bespoke
    // dashboard.  Cumulative fault-site stats survive clear().
    std::printf("\n-- metrics exposition (reliability run) --\n%s",
                exposition.c_str());
    util::FaultInjector::instance().clear();
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    out << exposition;
    std::printf("metrics exposition written to %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    out << obs::TraceRecorder::instance().dump_json();
    std::printf("trace span trees written to %s (render with "
                "tools/trace_view.py)\n",
                trace_path.c_str());
  }
  std::printf("\nserial one-at-a-time: %.2f s   served: %.2f s   (%.2fx)\n",
              serial_s, served_s, serial_s / served_s);
  std::printf("micro-batching + identical-request collapse turn the Fig. 1 "
              "workflow into a service: same bitwise results, a fraction of "
              "the compute.\n");
  return 0;
}
