/// Example: the training-systems features — prefetching loader, pinned
/// memory, activation checkpointing, simulated device hierarchy,
/// data-parallel replicas, and checkpoint save/load.

#include <cstdio>

#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "nn/serialize.hpp"
#include "ocean/archive.hpp"
#include "util/logging.hpp"
#include "ocean/bathymetry.hpp"

using namespace coastal;

int main() {
  util::set_log_level(util::LogLevel::kWarn);
  ocean::Grid grid(20, 20, 6, 400.0, 400.0);
  ocean::generate_estuary(grid, ocean::EstuaryParams{}, 42);
  auto tides = ocean::TidalForcing::gulf_coast_default();
  ocean::PhysicsParams params;
  params.dt = 10.0;
  ocean::ArchiveConfig acfg;
  acfg.spinup_seconds = 2 * 3600.0;
  acfg.duration_seconds = 16 * 3600.0;
  acfg.interval_seconds = 1800.0;
  auto fields = data::center_archive(
      grid, ocean::simulate_archive(grid, tides, params, acfg));
  data::DatasetConfig dcfg;
  dcfg.T = 3;
  dcfg.stride = 1;
  dcfg.dir = "/tmp/coastal_train_example";
  auto dataset = data::build_dataset(fields, dcfg);

  core::SurrogateConfig mcfg;
  mcfg.H = dataset.spec.H;
  mcfg.W = dataset.spec.W;
  mcfg.D = dataset.spec.D;
  mcfg.T = dataset.spec.T;
  mcfg.patch_h = 5;
  mcfg.patch_w = 5;
  mcfg.patch_d = 2;
  mcfg.embed_dim = 8;
  mcfg.stages = 3;
  mcfg.heads = {2, 4, 8};

  // --- single-"GPU" training with the full optimization stack --------------
  data::DeviceSim device;  // simulated SSD + PCIe hierarchy
  util::Rng rng(7);
  core::SurrogateModel model(mcfg, rng);
  core::TrainConfig tcfg;
  tcfg.epochs = 2;
  tcfg.lr = 2e-3f;
  tcfg.use_checkpoint = true;   // store block inputs, recompute interiors
  tcfg.batch_size = 2;          // checkpointing frees room for batch 2
  tcfg.enforce_memory_limit = true;
  tcfg.loader.num_workers = 2;  // prefetch
  tcfg.loader.pin_memory = true;
  auto stats = core::train(model, dataset, tcfg, &device);
  std::printf("single device: %.2f samples/s, val loss %.4f\n",
              stats.throughput, stats.val_loss);
  std::printf("  simulated I/O: SSD %.2f MB in %.2f s, H2D %.2f MB in "
              "%.2f s\n",
              device.ssd_bytes() / 1e6, device.ssd_seconds(),
              device.h2d_bytes() / 1e6, device.h2d_seconds());
  std::printf("  peak activation bytes: %.1f MB (checkpointed)\n",
              static_cast<double>(stats.peak_activation_bytes) / 1e6);

  // --- checkpoint to disk and restore ---------------------------------------
  nn::save_parameters(model, "/tmp/coastal_train_example/model.bin");
  util::Rng rng2(99);
  core::SurrogateModel restored(mcfg, rng2);
  nn::load_parameters(restored, "/tmp/coastal_train_example/model.bin");
  const double val_restored = core::validation_loss(restored, dataset);
  std::printf("restored checkpoint val loss %.4f (matches %.4f)\n",
              val_restored, stats.val_loss);

  // --- data-parallel replicas ------------------------------------------------
  std::printf("\ndata-parallel training (thread-backed ranks):\n");
  for (int ranks : {1, 2, 4}) {
    core::TrainConfig ptcfg;
    ptcfg.lr = 1e-3f;
    auto ps = core::train_data_parallel(mcfg, dataset, ptcfg, ranks, 2);
    std::printf("  %d ranks: %.2f samples/s aggregate, %.2f MB gradient "
                "allreduce per rank\n",
                ranks, ps.throughput,
                static_cast<double>(ps.allreduce_bytes) / 1e6);
  }
  return 0;
}
