#!/usr/bin/env python3
"""Perf-trajectory check: diff a fresh BENCH_kernels.json against the
committed baseline and report per-op regressions.

Each record is keyed by (op, size); the comparison metric is ns_per_iter
(lower is better).  Ops present on only one side are listed but never
fail the check — benchmarks come and go across PRs.

Exit status: 0 when no op regressed beyond --threshold, 1 otherwise, 2 on
usage/IO errors.  Typical use:

    ./build/bench_kernels                       # writes ./BENCH_kernels.json
    python3 tools/bench_diff.py --fresh BENCH_kernels.json

or via the CMake convenience target (runs the bench first):

    cmake --build build --target bench_diff
"""

import argparse
import json
import os
import re
import subprocess
import sys
import time


def die(message):
    print(f"bench_diff: {message}", file=sys.stderr)
    sys.exit(2)  # infrastructure error, distinct from exit 1 = regression


def load(path):
    try:
        with open(path) as f:
            records = json.load(f)
    except (OSError, ValueError) as e:
        die(f"cannot read {path}: {e}")
    table = {}
    for r in records:
        table[(r["op"], int(r.get("size", 0)))] = float(r["ns_per_iter"])
    return table


def main():
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--baseline",
        default=os.path.join(repo_root, "BENCH_kernels.json"),
        help="committed baseline JSON (default: repo-root BENCH_kernels.json)",
    )
    ap.add_argument(
        "--fresh",
        default="BENCH_kernels.json",
        help="freshly produced JSON to compare (default: ./BENCH_kernels.json)",
    )
    ap.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        # Run-to-run noise on the 1-CPU reference host reaches ~15-17% on
        # the small benches (see BM_MatmulSeedScalar across committed
        # baselines), so the default must sit clearly above that.
        help="percent slowdown that counts as a regression (default: 25)",
    )
    ap.add_argument(
        "--ignore",
        metavar="REGEX",
        # Some benches measure scheduling races rather than kernel speed —
        # e.g. how an 8-request burst happens to split between two serve
        # workers on a 1-core host — and swing far beyond any honest
        # threshold run to run.  They stay in the JSON (the trend is still
        # inspectable) but must not gate the perf ctest.
        help="benchmark names (op/size) matching this regex are reported "
        "but never counted as regressions",
    )
    ap.add_argument(
        "--run",
        metavar="BENCH_BINARY",
        help="run this bench_kernels binary first (producing --fresh in its "
        "working directory), then diff — lets ctest register the whole "
        "bench+diff pipeline as one test",
    )
    args = ap.parse_args()

    if args.run:
        # The binary hardcodes its output name, writing BENCH_kernels.json
        # into its cwd; run it where --fresh expects the file to land, and
        # refuse a mismatched basename outright — otherwise a stale file at
        # --fresh would be diffed as if it came from this run.
        if os.path.basename(args.fresh) != "BENCH_kernels.json":
            die(
                f"--run writes BENCH_kernels.json; --fresh points at "
                f"{args.fresh}, which that run would never produce"
            )
        workdir = os.path.dirname(os.path.abspath(args.fresh)) or "."
        run_start = time.time()
        try:
            proc = subprocess.run([os.path.abspath(args.run)], cwd=workdir)
        except OSError as e:
            die(f"cannot run {args.run}: {e}")
        if proc.returncode != 0:
            die(f"{args.run} exited with status {proc.returncode}")
        # The binary exits 0 even when it skipped or failed the JSON write
        # (empty writer under --benchmark_filter, read-only file, full
        # disk).  Diffing a stale file would be a silent false pass in the
        # perf gate, so demand the file was actually refreshed by this run.
        try:
            fresh_mtime = os.path.getmtime(os.path.abspath(args.fresh))
        except OSError as e:
            die(f"{args.run} produced no {args.fresh}: {e}")
        if fresh_mtime < run_start:
            die(f"{args.fresh} was not refreshed by {args.run} — "
                "stale results refused")

    base = load(args.baseline)
    fresh = load(args.fresh)

    common = sorted(set(base) & set(fresh))
    added = sorted(set(fresh) - set(base))
    removed = sorted(set(base) - set(fresh))
    if not common:
        die("no common (op, size) entries to compare")

    def name(key):
        op, size = key
        return f"{op}/{size}" if size else op

    try:
        ignore = re.compile(args.ignore) if args.ignore else None
    except re.error as e:
        die(f"bad --ignore regex: {e}")

    width = max(len(name(k)) for k in common)
    regressions = []
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'fresh':>12}  {'delta':>8}")
    for key in common:
        b, f = base[key], fresh[key]
        delta = (f - b) / b * 100.0 if b > 0 else 0.0
        flag = ""
        if ignore and ignore.search(name(key)):
            flag = "  (ignored)"
        elif delta > args.threshold:
            flag = "  << REGRESSION"
            regressions.append((key, delta))
        elif delta < -args.threshold:
            flag = "  (improved)"
        print(
            f"{name(key):<{width}}  {b:>10.0f}ns  {f:>10.0f}ns  {delta:>+7.1f}%{flag}"
        )

    for key in added:
        print(f"{name(key):<{width}}  {'-':>12}  {fresh[key]:>10.0f}ns  (new)")
    for key in removed:
        print(f"{name(key):<{width}}  {base[key]:>10.0f}ns  {'-':>12}  (removed)")

    if regressions:
        print(
            f"\n{len(regressions)} regression(s) beyond {args.threshold:.0f}%: "
            + ", ".join(f"{name(k)} {d:+.1f}%" for k, d in regressions)
        )
        return 1
    print(f"\nno regressions beyond {args.threshold:.0f}% "
          f"({len(common)} benchmarks compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
