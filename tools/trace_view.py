#!/usr/bin/env python3
"""Render a trace dump (obs::TraceRecorder::dump_json()) as an indented
per-request timeline.

The dump groups spans by trace id and nests children by time
containment; this tool prints each trace as a tree with durations,
relative offsets, and outcome tags, e.g.:

    trace 7 (total 41.2 ms)
      request                                   41.2 ms
        queue                 +0.0 ms            2.1 ms
        triage                +2.1 ms            0.0 ms
        pack                  +2.2 ms            0.4 ms
        forward               +2.6 ms           37.0 ms  [retried] B=4
        verify                +39.7 ms           1.4 ms
        resolve               +41.2 ms           0.0 ms

Typical use:

    ./build/forecast_server --trace /tmp/trace.json
    python3 tools/trace_view.py /tmp/trace.json

Options: --stage NAME keeps only traces containing that stage;
--errors-only keeps traces with at least one error-flagged span.
Exit status: 0 on success, 2 on usage/IO errors.
"""

import argparse
import json
import signal
import sys

# Die quietly when the consumer (head, less) closes the pipe.
signal.signal(signal.SIGPIPE, signal.SIG_DFL)


def die(message):
    print(f"trace_view: {message}", file=sys.stderr)
    sys.exit(2)


def span_tags(span):
    tags = []
    for flag in span.get("flags", []):
        tags.append(f"[{flag}]")
    if "code" in span:
        tags.append(f"code={span['code']}")
    if "rank" in span:
        tags.append(f"rank={span['rank']}")
    if span.get("extra"):
        tags.append(f"B={span['extra']}")
    return " ".join(tags)


def has_stage(spans, stage):
    return any(
        s.get("stage") == stage or has_stage(s.get("children", []), stage)
        for s in spans
    )


def has_flags(spans, wanted):
    return any(
        (set(s.get("flags", [])) & wanted)
        or has_flags(s.get("children", []), wanted)
        for s in spans
    )


def print_span(span, t0, depth):
    offset_ms = (span["start_us"] - t0) * 1e-3
    dur_ms = span["dur_us"] * 1e-3
    name = "  " * depth + span.get("stage", "?")
    tags = span_tags(span)
    print(f"  {name:<28} {offset_ms:>+9.1f} ms {dur_ms:>9.2f} ms  {tags}")
    for child in span.get("children", []):
        print_span(child, t0, depth + 1)


def main():
    parser = argparse.ArgumentParser(
        description="render dump_json() trace span trees as timelines")
    parser.add_argument("dump", help="trace JSON file, or - for stdin")
    parser.add_argument("--stage",
                        help="only traces containing this stage name")
    parser.add_argument("--errors-only", action="store_true",
                        help="only traces with an error/worker-lost span")
    args = parser.parse_args()

    try:
        if args.dump == "-":
            doc = json.load(sys.stdin)
        else:
            with open(args.dump) as f:
                doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(str(e))

    traces = doc.get("traces", [])
    shown = 0
    for trace in traces:
        spans = trace.get("spans", [])
        if not spans:
            continue
        if args.stage and not has_stage(spans, args.stage):
            continue
        if args.errors_only and not has_flags(
                spans, {"error", "worker_lost"}):
            continue
        t0 = min(s["start_us"] for s in spans)
        total_ms = max(s["start_us"] + s["dur_us"] for s in spans) * 1e-3 \
            - t0 * 1e-3
        print(f"trace {trace.get('trace')} (total {total_ms:.1f} ms)")
        for span in spans:
            print_span(span, t0, 1)
        shown += 1
    print(f"{shown} trace(s) of {len(traces)} shown")
    return 0


if __name__ == "__main__":
    sys.exit(main())
